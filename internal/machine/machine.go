// Package machine simulates a symmetric multiprocessor running a pluggable
// CPU scheduler: the substrate substituting for the paper's patched Linux
// 2.2.14 kernel on a dual-processor Pentium III.
//
// The machine is a deterministic discrete-event simulator. Tasks are
// described by a Behavior that yields CPU bursts separated by blocking
// events (I/O, timers) or termination; the machine plays the kernel's role,
// invoking the scheduler exactly at the points the paper identifies (§3.1):
// arrivals, wakeups, departures, blocking events, quantum expiries and
// weight changes. Quanta on different processors are deliberately not
// synchronized — each CPU independently re-enters the scheduler when its
// current thread blocks or is preempted, as in the paper's implementation.
//
// Wakeup preemption models the 2.2 reschedule_idle path: when a thread
// arrives or wakes and no processor is idle, the machine compares it (via
// the scheduler's own Less ordering) against the least-deserving running
// thread and preempts if the newcomer wins. Without this, interactive
// response times would be quantized to the 200 ms quantum, which neither
// Linux nor the paper's Figure 6(c) exhibits.
package machine

import (
	"container/heap"
	"fmt"

	"sfsched/internal/engine"
	"sfsched/internal/sched"
	"sfsched/internal/simtime"
	"sfsched/internal/xrand"
)

// Then says what a task does when a CPU burst completes.
type Then int

// Burst outcomes.
const (
	// ThenBlock puts the task to sleep for Step.Sleep, then starts the
	// next burst.
	ThenBlock Then = iota
	// ThenExit terminates the task.
	ThenExit
)

// Step is one CPU burst of a task and what follows it.
type Step struct {
	// Burst is the CPU time consumed before the boundary;
	// simtime.Infinity means the task computes forever.
	Burst simtime.Duration
	// Then is the boundary action once Burst has been consumed.
	Then Then
	// Sleep is the blocking duration when Then == ThenBlock; zero yields
	// an immediate re-wakeup (the task still passes through a blocking
	// event, churning the runnable set).
	Sleep simtime.Duration
}

// Behavior generates the CPU demand of a task. Next is called once per
// burst; implementations may use the deterministic generator r.
type Behavior interface {
	Next(now simtime.Time, r *xrand.Rand) Step
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(now simtime.Time, r *xrand.Rand) Step

// Next implements Behavior.
func (f BehaviorFunc) Next(now simtime.Time, r *xrand.Rand) Step { return f(now, r) }

// Hooks observe thread lifecycle transitions; the GMS fluid reference and
// trace collectors attach here. Nil fields are skipped.
type Hooks struct {
	// Runnable fires after a thread arrives or wakes.
	Runnable func(t *sched.Thread, now simtime.Time)
	// Unrunnable fires after a thread blocks or exits.
	Unrunnable func(t *sched.Thread, now simtime.Time)
	// Charged fires after the scheduler accounted ran to t.
	Charged func(t *sched.Thread, ran simtime.Duration, now simtime.Time)
	// WeightChanging fires immediately before a weight change is applied.
	WeightChanging func(t *sched.Thread, now simtime.Time)
}

// Config assembles a machine.
type Config struct {
	// CPUs is the processor count; it must match the scheduler's.
	CPUs int
	// Scheduler is the policy under test.
	Scheduler sched.Scheduler
	// ContextSwitchCost is unbillable latency inserted before a dispatch
	// that switches a CPU to a different task (0 = free switches).
	ContextSwitchCost simtime.Duration
	// DisableWakePreemption turns off the reschedule-on-wakeup path.
	DisableWakePreemption bool
	// Seed initializes the deterministic workload RNG.
	Seed uint64
}

// Stats aggregates machine-level counters.
type Stats struct {
	Dispatches      int64
	ContextSwitches int64
	Preemptions     int64
	Migrations      int64
	IdleTime        simtime.Duration
}

// Task is a simulated process: a thread control block plus its behaviour.
type Task struct {
	m        *Machine
	t        *sched.Thread
	behavior Behavior
	// rem is the CPU time left in the current burst; valid while
	// stepLoaded.
	rem        simtime.Duration
	step       Step
	stepLoaded bool
	lastWake   simtime.Time
	onExit     func(now simtime.Time)
	onBurstEnd func(now simtime.Time)
	exited     bool
}

// Thread returns the task's scheduler-visible control block.
func (k *Task) Thread() *sched.Thread { return k.t }

// Exited reports whether the task has terminated.
func (k *Task) Exited() bool { return k.exited }

// LastWake returns the time the task last became runnable.
func (k *Task) LastWake() simtime.Time { return k.lastWake }

// SpawnConfig describes a task to create.
type SpawnConfig struct {
	Name     string
	Weight   float64 // default 1, like the paper's kernel
	Priority int     // time-sharing priority in ticks; default 20
	Behavior Behavior
	At       simtime.Time // arrival time
	// OnExit fires when the task terminates (short-job streams respawn
	// here).
	OnExit func(now simtime.Time)
	// OnBurstEnd fires when a CPU burst completes (response-time and
	// frame-rate instrumentation).
	OnBurstEnd func(now simtime.Time)
}

type cpuState struct {
	cur  *Task
	last *Task
	// sl is the in-flight slice's accounting (engine.Slice.LastCharge is
	// the service accrual start, advanced by interim installments — the
	// historical runStart).
	sl     engine.Slice
	epoch  uint64
	idleAt simtime.Time
}

type event struct {
	at  simtime.Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Machine is a simulated SMP: the event-driven clock driver over the shared
// dispatch engine (internal/engine), which owns every scheduling decision —
// admission, pick validation, quantum grants, charge arithmetic, preemption
// ordering. The machine owns what a clock driver owns: the event heap, the
// simulated clock, task behaviors and burst bookkeeping. Not safe for
// concurrent use.
type Machine struct {
	sch     sched.Scheduler
	eng     *engine.Engine
	cpus    []cpuState
	ctxCost simtime.Duration
	preempt bool
	rng     *xrand.Rand

	now    simtime.Time
	evq    eventHeap
	seq    uint64
	nextID int

	tasks map[*sched.Thread]*Task
	hooks Hooks
	stats Stats

	// victims is the wakeup-preemption scan's scratch (no per-wakeup
	// allocation).
	victims []*sched.Thread
}

// New builds a machine from cfg. It panics on inconsistent static
// configuration (CPU counts, nil scheduler); these are programmer errors.
func New(cfg Config) *Machine {
	if cfg.Scheduler == nil {
		panic("machine: nil scheduler")
	}
	if cfg.CPUs < 1 {
		panic(fmt.Sprintf("machine: invalid CPU count %d", cfg.CPUs))
	}
	if cfg.CPUs != cfg.Scheduler.NumCPU() {
		panic(fmt.Sprintf("machine: %d CPUs but scheduler configured for %d",
			cfg.CPUs, cfg.Scheduler.NumCPU()))
	}
	m := &Machine{
		sch:     cfg.Scheduler,
		eng:     engine.New(cfg.Scheduler),
		cpus:    make([]cpuState, cfg.CPUs),
		ctxCost: cfg.ContextSwitchCost,
		preempt: !cfg.DisableWakePreemption,
		rng:     xrand.New(cfg.Seed),
		tasks:   make(map[*sched.Thread]*Task),
		victims: make([]*sched.Thread, 0, cfg.CPUs),
	}
	return m
}

// Now returns the current simulated time.
func (m *Machine) Now() simtime.Time { return m.now }

// Scheduler returns the policy under test.
func (m *Machine) Scheduler() sched.Scheduler { return m.sch }

// Rand returns the machine's deterministic workload RNG.
func (m *Machine) Rand() *xrand.Rand { return m.rng }

// Stats returns a snapshot of machine counters.
func (m *Machine) Stats() Stats { return m.stats }

// SetHooks installs lifecycle observers; call before Run.
func (m *Machine) SetHooks(h Hooks) { m.hooks = h }

// SetDecisionRecorder attaches rec to the machine's dispatch engine. The
// structural golden tests use it to capture the exact decision trace and
// compare it, event for event, against a runtime driving the same engine.
func (m *Machine) SetDecisionRecorder(rec engine.Recorder) { m.eng.SetRecorder(rec) }

func (m *Machine) push(at simtime.Time, fn func()) {
	if at < m.now {
		at = m.now
	}
	m.seq++
	heap.Push(&m.evq, event{at: at, seq: m.seq, fn: fn})
}

// At schedules fn to run at simulated time t (clamped to now).
func (m *Machine) At(t simtime.Time, fn func(now simtime.Time)) {
	m.push(t, func() { fn(m.now) })
}

// Every schedules fn at now+interval, then every interval thereafter.
func (m *Machine) Every(interval simtime.Duration, fn func(now simtime.Time)) {
	if interval <= 0 {
		panic("machine: non-positive interval")
	}
	var rep func()
	rep = func() {
		fn(m.now)
		m.push(m.now.Add(interval), rep)
	}
	m.push(m.now.Add(interval), rep)
}

// Spawn registers a task to arrive at cfg.At.
func (m *Machine) Spawn(cfg SpawnConfig) *Task {
	if cfg.Behavior == nil {
		panic("machine: spawn without behavior")
	}
	w := cfg.Weight
	if w == 0 {
		w = 1 // the paper's kernel assigns a default weight of 1
	}
	m.nextID++
	t := &sched.Thread{
		ID:       m.nextID,
		Name:     cfg.Name,
		Weight:   w,
		Phi:      w,
		CPU:      sched.NoCPU,
		LastCPU:  sched.NoCPU,
		Priority: cfg.Priority,
	}
	k := &Task{
		m:          m,
		t:          t,
		behavior:   cfg.Behavior,
		onExit:     cfg.OnExit,
		onBurstEnd: cfg.OnBurstEnd,
	}
	m.tasks[t] = k
	m.push(cfg.At, func() { m.arrive(k) })
	return k
}

// SetWeight changes a task's weight at time t (the setweight system call).
func (m *Machine) SetWeight(k *Task, w float64) error {
	if m.hooks.WeightChanging != nil {
		m.hooks.WeightChanging(k.t, m.now)
	}
	return m.sch.SetWeight(k.t, w, m.now)
}

// Kill terminates a task immediately, whatever its state (the experiment
// harness uses it to stop tasks at wall-clock instants, as the paper does
// with task T2 in Figure 4).
func (m *Machine) Kill(k *Task) {
	if k.exited {
		return
	}
	if k.t.Running() {
		m.stop(k.t.CPU)
	}
	if k.t.State == sched.Runnable {
		if err := m.eng.Depart(k.t, sched.Exited, m.now); err != nil {
			panic(fmt.Errorf("machine: kill: %w", err))
		}
		if m.hooks.Unrunnable != nil {
			m.hooks.Unrunnable(k.t, m.now)
		}
	} else {
		k.t.State = sched.Exited
	}
	k.exited = true
	delete(m.tasks, k.t)
	if k.onExit != nil {
		k.onExit(m.now)
	}
	m.schedule()
}

// ServiceNow returns the task's CPU service including the uncharged portion
// of any quantum currently in progress; samplers use it so that measurements
// are not quantized to quantum boundaries.
func (m *Machine) ServiceNow(k *Task) simtime.Duration {
	s := k.t.Service
	if k.t.Running() {
		s += m.cpus[k.t.CPU].sl.Uncharged(m.now)
	}
	return s
}

// Run executes events until the simulated clock reaches until, then settles
// in-flight quanta so that service accounting is exact at the horizon.
// It may be called repeatedly with increasing horizons.
func (m *Machine) Run(until simtime.Time) {
	m.schedule()
	for m.evq.Len() > 0 {
		if m.evq[0].at > until {
			break
		}
		e := heap.Pop(&m.evq).(event)
		m.now = e.at
		e.fn()
	}
	if until > m.now {
		m.now = until
	}
	m.settle()
	// Account idle time that is still open at the horizon, so Stats are
	// exact even for CPUs that never dispatched again.
	for i := range m.cpus {
		c := &m.cpus[i]
		if c.cur == nil {
			m.stats.IdleTime += m.now.Sub(c.idleAt)
			c.idleAt = m.now
		}
	}
}

// arrive makes a task runnable for the first time (or respawned streams).
func (m *Machine) arrive(k *Task) {
	if k.exited {
		return
	}
	k.loadStep()
	k.lastWake = m.now
	if err := m.eng.Admit(k.t, m.now); err != nil {
		panic(fmt.Errorf("machine: arrive: %w", err))
	}
	if m.hooks.Runnable != nil {
		m.hooks.Runnable(k.t, m.now)
	}
	m.wakePreempt(k)
	m.schedule()
}

func (k *Task) loadStep() {
	if k.stepLoaded {
		return
	}
	k.step = k.behavior.Next(k.m.now, k.m.rng)
	if k.step.Burst <= 0 {
		// A zero-length burst still passes through the scheduler; give
		// it the minimum representable slice to keep time advancing.
		k.step.Burst = simtime.Microsecond
	}
	k.rem = k.step.Burst
	k.stepLoaded = true
}

// syncRunning performs an interim charge of the service each running task
// has accrued so far, so that scheduler state (tags, counters, surpluses)
// reflects reality mid-quantum. This stands in for the kernel's timer-tick
// accounting: without it a CPU hog halfway through a 200 ms quantum would
// still look freshly recharged to preemption comparisons. The pending
// quantum-end event stays valid: the engine installment charges only the
// accrual since the last one, capped at the task's remaining burst.
func (m *Machine) syncRunning() {
	for i := range m.cpus {
		c := &m.cpus[i]
		if c.cur == nil {
			continue
		}
		ran := m.eng.ChargeInstallment(&c.sl, m.now, c.cur.rem)
		if ran == 0 {
			continue
		}
		if m.hooks.Charged != nil {
			m.hooks.Charged(c.cur.t, ran, m.now)
		}
		c.cur.rem -= ran
	}
}

// wakePreempt implements reschedule-on-wakeup: if no CPU is idle and the
// newcomer is preferred (by the scheduler's own ordering) over the least
// deserving running thread, that thread is preempted.
func (m *Machine) wakePreempt(k *Task) {
	if !m.preempt {
		return
	}
	for i := range m.cpus {
		if m.cpus[i].cur == nil {
			return // an idle CPU will absorb the wakeup
		}
	}
	m.syncRunning()
	running := m.victims[:0]
	for i := range m.cpus {
		running = append(running, m.cpus[i].cur.t)
	}
	victim := m.eng.LessVictim(running)
	m.victims = running[:0]
	if victim >= 0 && m.eng.Prefer(k.t, m.cpus[victim].cur.t) {
		m.stop(victim)
		m.stats.Preemptions++
	}
}

// stop deschedules the task on cpu, charging it for the service it
// received. The task remains runnable (quantum expiry / preemption); burst
// boundaries are handled by the caller.
func (m *Machine) stop(cpu int) *Task {
	c := &m.cpus[cpu]
	k := c.cur
	if k == nil {
		return nil
	}
	// Settle the remainder through the engine, capped at the remaining
	// burst (a task cannot consume beyond it).
	ran := m.eng.Settle(&c.sl, m.now, k.rem)
	if m.hooks.Charged != nil {
		m.hooks.Charged(k.t, ran, m.now)
	}
	k.rem -= ran
	k.t.LastCPU = cpu
	k.t.CPU = sched.NoCPU
	c.cur = nil
	c.epoch++
	c.idleAt = m.now
	return k
}

// cpuStop handles the planned end of a quantum (expiry, block or exit).
func (m *Machine) cpuStop(cpu int, epoch uint64) {
	c := &m.cpus[cpu]
	if c.epoch != epoch || c.cur == nil {
		return // stale event: the quantum was cut short by a preemption
	}
	k := m.stop(cpu)
	if k.rem == 0 {
		m.finishBurst(k)
	}
	m.schedule()
}

// finishBurst performs the boundary action of a completed burst.
func (m *Machine) finishBurst(k *Task) {
	k.stepLoaded = false
	if k.onBurstEnd != nil {
		k.onBurstEnd(m.now)
	}
	switch k.step.Then {
	case ThenExit:
		if err := m.eng.Depart(k.t, sched.Exited, m.now); err != nil {
			panic(fmt.Errorf("machine: exit: %w", err))
		}
		if m.hooks.Unrunnable != nil {
			m.hooks.Unrunnable(k.t, m.now)
		}
		k.exited = true
		delete(m.tasks, k.t)
		if k.onExit != nil {
			k.onExit(m.now)
		}
	case ThenBlock:
		if err := m.eng.Depart(k.t, sched.Blocked, m.now); err != nil {
			panic(fmt.Errorf("machine: block: %w", err))
		}
		if m.hooks.Unrunnable != nil {
			m.hooks.Unrunnable(k.t, m.now)
		}
		m.push(m.now.Add(k.step.Sleep), func() { m.wake(k) })
	default:
		panic(fmt.Sprintf("machine: unknown burst action %d", k.step.Then))
	}
}

// wake returns a blocked task to the runnable set.
func (m *Machine) wake(k *Task) {
	if k.exited {
		return
	}
	k.loadStep()
	k.lastWake = m.now
	if err := m.eng.Admit(k.t, m.now); err != nil {
		panic(fmt.Errorf("machine: wake: %w", err))
	}
	if m.hooks.Runnable != nil {
		m.hooks.Runnable(k.t, m.now)
	}
	m.wakePreempt(k)
	m.schedule()
}

// schedule fills every idle CPU with the engine's validated picks. Contract
// violations surface as panics carrying the engine's sentinel errors
// (engine.ErrThreadRunning, engine.ErrUnknownThread), so they report
// identically from both drivers.
func (m *Machine) schedule() {
	for i := range m.cpus {
		if m.cpus[i].cur != nil {
			continue
		}
		t, err := m.eng.Pick(i, m.now)
		if err != nil {
			panic(fmt.Errorf("machine: %w", err))
		}
		if t == nil {
			continue
		}
		k, ok := m.tasks[t]
		if !ok {
			panic(fmt.Errorf("machine: %w: %v", engine.ErrUnknownThread, t))
		}
		m.dispatch(i, k)
	}
}

// dispatch starts k on cpu for min(timeslice, remaining burst).
func (m *Machine) dispatch(cpu int, k *Task) {
	c := &m.cpus[cpu]
	m.stats.Dispatches++
	m.stats.IdleTime += m.now.Sub(c.idleAt)
	start := m.now
	if c.last != k {
		m.stats.ContextSwitches++
		start = start.Add(m.ctxCost)
	}
	if k.t.LastCPU != sched.NoCPU && k.t.LastCPU != cpu {
		m.stats.Migrations++
	}
	if err := m.eng.Begin(&c.sl, k.t, cpu, m.now, start); err != nil {
		panic(fmt.Errorf("machine: %w", err))
	}
	runFor := simtime.Min(c.sl.Quantum, k.rem)
	c.cur = k
	c.last = k
	c.epoch++
	epoch := c.epoch
	m.push(start.Add(runFor), func() { m.cpuStop(cpu, epoch) })
}

// settle charges all in-flight quanta up to the current time, leaving the
// tasks runnable, so that Service values are exact at the horizon.
func (m *Machine) settle() {
	for i := range m.cpus {
		if m.cpus[i].cur == nil {
			continue
		}
		k := m.stop(i)
		if k.rem == 0 {
			m.finishBurst(k)
		}
	}
}
