package machine

// Conformance test of the driver-level invariant panics: a scheduler that
// violates the engine contract (picking a running thread, picking a thread
// the driver never admitted, granting a non-positive quantum) must surface as
// a panic carrying a wrapped engine sentinel, so errors.Is identifies the
// violation identically from the simulator and the runtime.

import (
	"errors"
	"strings"
	"testing"

	"sfsched/internal/engine"
	"sfsched/internal/sched"
	"sfsched/internal/simtime"
	"sfsched/internal/xrand"
)

// rogueSched is a minimal policy whose Pick and Timeslice are scripted to
// violate the scheduler contract on demand.
type rogueSched struct {
	cpus  int
	added []*sched.Thread
	pick  func(added []*sched.Thread) *sched.Thread
	slice simtime.Duration
}

func (s *rogueSched) Name() string { return "rogue" }
func (s *rogueSched) NumCPU() int  { return s.cpus }
func (s *rogueSched) Add(t *sched.Thread, _ simtime.Time) error {
	s.added = append(s.added, t)
	return nil
}
func (s *rogueSched) Remove(*sched.Thread, simtime.Time) error             { return nil }
func (s *rogueSched) Pick(int, simtime.Time) *sched.Thread                 { return s.pick(s.added) }
func (s *rogueSched) Charge(*sched.Thread, simtime.Duration, simtime.Time) {}
func (s *rogueSched) Timeslice(*sched.Thread, simtime.Time) simtime.Duration {
	return s.slice
}
func (s *rogueSched) SetWeight(*sched.Thread, float64, simtime.Time) error { return nil }
func (s *rogueSched) Runnable() int                                        { return len(s.added) }
func (s *rogueSched) Less(_, _ *sched.Thread) bool                         { return false }

func forever() Behavior {
	return BehaviorFunc(func(simtime.Time, *xrand.Rand) Step {
		return Step{Burst: simtime.Infinity}
	})
}

// runRogue spawns one task on a machine driven by sch and returns the
// recovered panic value of Run, which must be an error.
func runRogue(t *testing.T, sch *rogueSched) error {
	t.Helper()
	m := New(Config{CPUs: sch.cpus, Scheduler: sch, DisableWakePreemption: true})
	m.Spawn(SpawnConfig{Name: "victim", Weight: 1, Behavior: forever()})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		m.Run(simtime.Time(simtime.Second))
	}()
	if recovered == nil {
		t.Fatal("contract violation did not panic")
	}
	err, ok := recovered.(error)
	if !ok {
		t.Fatalf("panic value %T is not an error: %v", recovered, recovered)
	}
	return err
}

func TestPanicWrapsThreadRunning(t *testing.T) {
	// Two CPUs, one runnable thread: CPU 0 dispatches it, then CPU 1's pick
	// returns the same (now running) thread.
	sch := &rogueSched{cpus: 2, slice: 10 * simtime.Millisecond}
	sch.pick = func(added []*sched.Thread) *sched.Thread {
		if len(added) == 0 {
			return nil
		}
		return added[0]
	}
	err := runRogue(t, sch)
	if !errors.Is(err, engine.ErrThreadRunning) {
		t.Fatalf("got %v, want wrapped engine.ErrThreadRunning", err)
	}
	if !strings.HasPrefix(err.Error(), "machine: ") {
		t.Fatalf("panic not attributed to the driver: %q", err)
	}
}

func TestPanicWrapsUnknownThread(t *testing.T) {
	// Pick fabricates a thread the machine never admitted.
	ghost := &sched.Thread{ID: 999, Weight: 1, Phi: 1,
		CPU: sched.NoCPU, LastCPU: sched.NoCPU, State: sched.Runnable}
	sch := &rogueSched{cpus: 1, slice: 10 * simtime.Millisecond}
	sch.pick = func([]*sched.Thread) *sched.Thread { return ghost }
	err := runRogue(t, sch)
	if !errors.Is(err, engine.ErrUnknownThread) {
		t.Fatalf("got %v, want wrapped engine.ErrUnknownThread", err)
	}
	if !strings.HasPrefix(err.Error(), "machine: ") {
		t.Fatalf("panic not attributed to the driver: %q", err)
	}
}

func TestPanicWrapsBadTimeslice(t *testing.T) {
	// A legal pick granted a zero-length quantum.
	sch := &rogueSched{cpus: 1, slice: 0}
	sch.pick = func(added []*sched.Thread) *sched.Thread {
		if len(added) == 0 {
			return nil
		}
		return added[0]
	}
	err := runRogue(t, sch)
	if !errors.Is(err, engine.ErrBadTimeslice) {
		t.Fatalf("got %v, want wrapped engine.ErrBadTimeslice", err)
	}
	if !strings.Contains(err.Error(), "rogue") {
		t.Fatalf("bad-timeslice panic does not name the policy: %q", err)
	}
}

// TestEngineSentinelsDistinct pins that the three engine sentinels never
// alias each other under errors.Is, so a recovered driver panic identifies
// exactly one violation.
func TestEngineSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		engine.ErrUnknownThread, engine.ErrThreadRunning, engine.ErrBadTimeslice,
	}
	for i, a := range sentinels {
		if !errors.Is(a, a) {
			t.Errorf("sentinel %d does not match itself", i)
		}
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %d aliases %d", i, j)
			}
		}
	}
}
