// Optional capability interfaces: narrow views a Scheduler may additionally
// implement. The sharded runtime (internal/rt) discovers them with one type
// assertion per shard at construction and never names a concrete policy
// type, so any Scheduler — SFS, SFQ, stride, BVT, hierarchical SFS, time
// sharing, lottery — can be dispatched, rebalanced and reported on behind
// per-CPU runqueues. A policy that lacks a capability still shards; the
// runtime substitutes a policy-agnostic fallback (a service-minus-entitlement
// lag rank for migration, a no-op frame translation) and degrades only the
// quality of rebalancing decisions, never correctness.

package sched

import "sfsched/internal/simtime"

// VirtualTimer reports the scheduler's current virtual time: the global
// normalized-service frame its tags are measured against (v for the
// fair-queueing family, the global pass for stride). Policies without a
// virtual-time notion (time sharing, lottery) simply do not implement it.
type VirtualTimer interface {
	// VirtualTime returns the current virtual time, in the policy's own
	// tag units. It is monotone within one scheduler instance; values are
	// not comparable across instances (see FrameTranslator).
	VirtualTime() float64
}

// LagReporter ranks threads for cross-shard migration: FreshSurplus returns
// how far ahead of its ideal proportional allocation the thread currently
// is, in the policy's tag units (SFS's α_i = φ_i·(S_i − v), or an analogue).
// Larger is "more ahead"; the rebalancer prefers to migrate high-surplus
// threads because the wakeup-style re-entry on the destination shard costs
// them the least. Only relative order within one scheduler instance matters.
type LagReporter interface {
	// FreshSurplus returns t's surplus against the scheduler's current
	// virtual time. t must be in the scheduler's runnable set.
	FreshSurplus(t *Thread) float64
}

// Preempter ranks threads for wakeup preemption: "would this newly-woken
// thread out-rank thread T right now?". PreemptRank returns a thread's claim
// on a processor — smaller is more deserving — *projected forward* by ran of
// service the thread has consumed since its tags were last charged. The
// projection is what makes the answer "right now": a runtime that charges
// only at slice boundaries (internal/rt) holds stale tags for running
// threads, and comparing a woken thread against a mid-slice CPU hog on stale
// tags would systematically under-preempt. A woken thread w therefore
// preempts a running thread t when
//
//	PreemptRank(w, 0) < PreemptRank(t, ran_t)
//
// where ran_t is t's uncharged in-flight service. Ranks are comparable only
// within one scheduler instance at one instant; the projection is advisory
// (it mutates nothing), so a policy may approximate — fixed-point SFS ranks
// in float — without perturbing its tag arithmetic or decision traces.
// Policies with no preference order over wakeups (time sharing's epoch
// counters already encode their own I/O boost; lottery is memoryless) simply
// do not implement it, and the runtime never raises a preemption flag for
// them.
type Preempter interface {
	// PreemptRank returns t's preemption rank (smaller = more deserving of
	// a processor) as if t had additionally been charged ran right now.
	// Pass ran = 0 for a thread that is not running.
	PreemptRank(t *Thread, ran simtime.Duration) float64
}

// BatchAdder admits several newly woken threads in one call: equivalent to
// calling Add for each element of ts in order at the same instant, but
// allowing the policy to run whole-set bookkeeping (weight readjustment,
// surplus refreshes) once per batch instead of once per thread. The sharded
// runtime's intake drain uses it so that N wakeups absorbed under one lock
// acquisition cost one readjustment pass; policies without the capability
// are admitted with N ordinary Adds and differ only in constant factors,
// never in the resulting runnable set.
type BatchAdder interface {
	// AddBatch makes every thread of ts runnable at now, as Add would one
	// by one. ts must not contain duplicates or already-managed threads;
	// on error the runnable set is unchanged.
	AddBatch(ts []*Thread, now simtime.Time) error
}

// InterimCharger accounts in-flight service to a still-running thread in the
// middle of its slice — the runtime analogue of internal/machine's
// syncRunning. A runtime that charges only at slice boundaries (internal/rt's
// charge-at-completion model) holds stale tags for running threads; the slice
// enforcer calls InterimCharge once per enforcement tick so a running
// thread's tags are never more than one tick behind its real consumption.
//
// The contract is charge splitting: for any partition ran = r₁ + … + rₙ,
// calling InterimCharge for r₁…rₙ₋₁ followed by Charge for rₙ must leave the
// thread's tags where a single Charge(ran) would have (up to floating-point
// or fixed-point rounding of the individual divisions — never a different
// scheduling decision class). Every policy whose tag advance is linear in the
// charged duration satisfies this for free by delegating to Charge; SFS's
// variable-length-quanta property (§2.3) is exactly what makes the split
// well-defined there. Policies whose accounting samples time instead of
// integrating it (time sharing's tick counters, lottery's memoryless draws)
// do not implement the capability, and the enforcer leaves their running tags
// stale — the documented degradation mode.
type InterimCharger interface {
	// InterimCharge charges ran of service to t as a mid-slice installment.
	// t must be managed by the scheduler and currently Running; the slice's
	// eventual boundary Charge must cover only the remainder, not re-charge
	// installments already paid.
	InterimCharge(t *Thread, ran simtime.Duration, now simtime.Time)
}

// FrameTranslator carries a thread's virtual-time position across scheduler
// instances, the cross-shard migration hook: tag frames are per-instance
// (each shard's virtual time advances at its own pace), so a migrating
// thread's tags must be re-expressed relative to the destination's frame or
// it would arrive arbitrarily far in the past (banking credit) or future
// (starving). FrameLead captures the thread's position relative to the
// source's frame; SetFrameLead re-creates that position relative to the
// destination's. Both are called with the thread outside any runnable set
// (the migration removes it first and re-adds it after).
//
// The seam is reused at two scales: the intra-box rebalancer translates
// frames between the shards of one runtime (internal/rt/rebalance.go), and
// the cluster tier's cross-machine migration carries the same lead across
// whole runtimes (rt.Deport captures it, rt.Admit restores it on another
// machine's scheduler instance). Nothing here is shard-specific — the
// contract holds between any two instances of frame-tagged schedulers —
// which is why the cluster tier needed no new capability.
type FrameTranslator interface {
	// FrameLead returns how far the thread's tag sits ahead of this
	// scheduler's current virtual time, in tag units.
	FrameLead(t *Thread) float64
	// SetFrameLead rewrites the thread's tag to sit lead ahead of this
	// scheduler's current virtual time, so a subsequent Add re-admits it
	// with the same relative position it held on the source scheduler.
	SetFrameLead(t *Thread, lead float64)
}
