// Package sched defines the vocabulary shared by every CPU scheduler in this
// repository: the Thread control block, the Scheduler interface the simulated
// machine drives, and the validation rules common to all implementations.
//
// The split mirrors the paper's implementation (§3): the Linux kernel owns
// thread lifecycle (fork, block, wakeup, exit) and invokes the scheduling
// policy at well-defined points; here internal/machine plays the kernel and
// each policy package (internal/core for SFS, internal/sfq, internal/timeshare,
// internal/stride, internal/bvt) implements Scheduler.
package sched

import (
	"errors"
	"fmt"

	"sfsched/internal/fixedpoint"
	"sfsched/internal/runqueue"
	"sfsched/internal/simtime"
)

// State is the lifecycle state of a thread, maintained by the machine (the
// "kernel"), not by scheduling policies.
type State int

// Thread lifecycle states.
const (
	// New is a thread that has been created but not yet added to a
	// scheduler.
	New State = iota
	// Runnable threads are eligible to run (they may currently be running;
	// check CPU >= 0).
	Runnable
	// Blocked threads are sleeping on I/O or a timer and are invisible to
	// scheduling decisions, though some policies (time sharing) still
	// recharge their counters at epoch boundaries.
	Blocked
	// Exited threads have terminated and never return.
	Exited
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case New:
		return "new"
	case Runnable:
		return "runnable"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// NoCPU is the CPU field value of a thread that is not running.
const NoCPU = -1

// Thread is the scheduler-visible control block. One struct carries the
// fields of every policy (as a kernel task_struct would); each policy uses
// only its own fields. All times are simulated.
type Thread struct {
	ID   int
	Name string

	// Weight is the user-requested weight w_i; always > 0.
	Weight float64
	// Phi is the instantaneous weight φ_i produced by the readjustment
	// algorithm; schedulers that do not readjust keep Phi == Weight.
	Phi float64

	// State is maintained by the machine around Scheduler calls.
	State State
	// CPU is the processor the thread currently occupies, or NoCPU.
	CPU int
	// LastCPU is the processor the thread most recently ran on, or NoCPU;
	// used by the affinity extension and the migration counters.
	LastCPU int

	// Service is the total CPU time received so far.
	Service simtime.Duration

	// Fair-queueing tags (SFS, SFQ, BVT): start tag S_i, finish tag F_i,
	// and the SFS surplus α_i = φ_i·(S_i − v).
	Start   float64
	Finish  float64
	Surplus float64

	// Fixed-point shadows of the tags, used by the kernel-faithful
	// fixed-point SFS variant. FxPhi caches the scaled conversion of Phi so
	// the charge path does not re-convert φ on every quantum; the scheduler
	// refreshes it whenever Phi changes. FxShift records the cumulative
	// wraparound-rebase shift already applied to this thread's tags, so a
	// thread that slept across a rebase can be brought into the current tag
	// frame on wakeup.
	FxStart   fixedpoint.Value
	FxFinish  fixedpoint.Value
	FxSurplus fixedpoint.Value
	FxPhi     fixedpoint.Value
	FxShift   fixedpoint.Value

	// Time-sharing fields (Linux 2.2): remaining timeslice in ticks and
	// static priority. TickRem carries the sub-tick remainder of charged
	// service so that repeated bursts shorter than one tick still consume
	// counter once they accumulate to a tick — without it, a hog that always
	// yields before the tick boundary rides free forever (the 2.2 kernel's
	// tick-sampling exploit) and can starve woken threads of equal goodness.
	Counter  int
	Priority int
	TickRem  simtime.Duration

	// Stride-scheduling fields.
	Pass   float64
	Stride float64

	// BVT fields: warp advantage in virtual-time units (0 = plain SFQ
	// behaviour).
	Warp float64

	// Decisions counts how many times this thread was picked; useful for
	// tests and overhead accounting.
	Decisions int64

	// rq holds the intrusive run-queue handles, one per runqueue.Slot, the
	// task_struct-style embedding that lets the queues skip hash lookups.
	rq [runqueue.NumSlots]runqueue.Handle[*Thread]
}

// RunqueueHandle implements runqueue.Indexed: the thread's intrusive handle
// for the given queue slot.
func (t *Thread) RunqueueHandle(s runqueue.Slot) *runqueue.Handle[*Thread] {
	return &t.rq[s]
}

// Running reports whether the thread currently occupies a CPU.
func (t *Thread) Running() bool { return t.CPU != NoCPU }

// String identifies the thread for logs and test failures.
func (t *Thread) String() string {
	if t.Name != "" {
		return fmt.Sprintf("%s(#%d w=%g)", t.Name, t.ID, t.Weight)
	}
	return fmt.Sprintf("thread#%d(w=%g)", t.ID, t.Weight)
}

// Errors returned by Scheduler implementations.
var (
	// ErrBadWeight reports a non-positive or non-finite weight.
	ErrBadWeight = errors.New("sched: weight must be positive and finite")
	// ErrNotManaged reports an operation on a thread the scheduler does
	// not currently manage.
	ErrNotManaged = errors.New("sched: thread not managed by this scheduler")
	// ErrAlreadyManaged reports adding a thread twice.
	ErrAlreadyManaged = errors.New("sched: thread already managed")
)

// Scheduler is a CPU scheduling policy for a p-processor machine. The
// machine calls it at the points the paper identifies (§3.1): arrivals,
// wakeups, departures, blocking events, quantum expiries and weight changes.
//
// Threads handed to Add remain under the scheduler's management — including
// while running — until Remove. Pick must never return a thread that is
// already running on another CPU (Thread.CPU >= 0).
type Scheduler interface {
	// Name identifies the policy ("SFS", "SFQ", ...).
	Name() string
	// NumCPU returns the processor count the policy was configured for.
	NumCPU() int

	// Add makes a newly arrived or newly woken thread runnable. The
	// machine sets t.State = Runnable before the call. Policies that
	// readjust weights do so here (the runnable set changed).
	Add(t *Thread, now simtime.Time) error
	// Remove takes a blocking or exiting thread out of the runnable set.
	// The machine sets t.State (Blocked or Exited) before the call.
	Remove(t *Thread, now simtime.Time) error
	// Pick chooses the next thread to run on cpu, or nil if no runnable
	// non-running thread exists. It must not mutate t.CPU; the machine
	// performs the dispatch.
	Pick(cpu int, now simtime.Time) *Thread
	// Charge accounts ran units of CPU service to t (which just ran) and
	// updates the policy's bookkeeping (tags, counters, virtual time).
	// Called on quantum expiry, preemption, blocking and exit, before any
	// Remove. ran may be less than the granted timeslice.
	Charge(t *Thread, ran simtime.Duration, now simtime.Time)
	// Timeslice returns the quantum the machine should grant t when
	// dispatching it now.
	Timeslice(t *Thread, now simtime.Time) simtime.Duration
	// SetWeight changes the thread's weight at any time, as the paper's
	// setweight system call does.
	SetWeight(t *Thread, w float64, now simtime.Time) error
	// Runnable returns the number of runnable threads (including running).
	Runnable() int
	// Less orders threads by scheduling preference ("a should run before
	// b"); the machine uses it for wakeup preemption decisions.
	Less(a, b *Thread) bool
}

// ValidWeight reports whether w is an acceptable thread weight.
func ValidWeight(w float64) bool {
	return w > 0 && w == w && w <= 1e12 // finite, positive, sane magnitude
}
