package sched

import (
	"math"
	"strings"
	"testing"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{
		New:      "new",
		Runnable: "runnable",
		Blocked:  "blocked",
		Exited:   "exited",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	if got := State(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown state string %q", got)
	}
}

func TestThreadRunning(t *testing.T) {
	th := &Thread{CPU: NoCPU}
	if th.Running() {
		t.Fatal("NoCPU thread reported running")
	}
	th.CPU = 0
	if !th.Running() {
		t.Fatal("CPU 0 thread reported not running")
	}
}

func TestThreadString(t *testing.T) {
	named := &Thread{ID: 3, Name: "web", Weight: 2}
	if got := named.String(); !strings.Contains(got, "web") || !strings.Contains(got, "w=2") {
		t.Errorf("named thread string %q", got)
	}
	anon := &Thread{ID: 7, Weight: 1}
	if got := anon.String(); !strings.Contains(got, "7") {
		t.Errorf("anonymous thread string %q", got)
	}
}

func TestValidWeight(t *testing.T) {
	good := []float64{1, 0.001, 10000, 1e12}
	for _, w := range good {
		if !ValidWeight(w) {
			t.Errorf("ValidWeight(%g) = false", w)
		}
	}
	bad := []float64{0, -1, math.NaN(), math.Inf(1), 1e13}
	for _, w := range bad {
		if ValidWeight(w) {
			t.Errorf("ValidWeight(%g) = true", w)
		}
	}
}
