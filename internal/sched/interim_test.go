package sched_test

// Pins the InterimCharger charge-splitting contract for every policy that
// implements the capability: InterimCharge installments followed by a
// boundary Charge for the remainder must leave the thread where a single
// Charge of the total would have — Service exactly, tags up to the rounding
// of the individual divisions, and never a different pick order.

import (
	"math"
	"testing"

	"sfsched/internal/bvt"
	"sfsched/internal/core"
	"sfsched/internal/hier"
	"sfsched/internal/sched"
	"sfsched/internal/sfq"
	"sfsched/internal/simtime"
	"sfsched/internal/stride"
)

func interimThread(id int, w float64) *sched.Thread {
	return &sched.Thread{ID: id, Weight: w, Phi: w,
		CPU: sched.NoCPU, LastCPU: sched.NoCPU, State: sched.Runnable}
}

func TestInterimChargeComposition(t *testing.T) {
	const quantum = 10 * simtime.Millisecond
	factories := map[string]func() sched.Scheduler{
		"sfs":    func() sched.Scheduler { return core.New(2, core.WithQuantum(quantum)) },
		"sfq":    func() sched.Scheduler { return sfq.New(2, sfq.WithQuantum(quantum)) },
		"stride": func() sched.Scheduler { return stride.New(2, stride.WithQuantum(quantum)) },
		"bvt":    func() sched.Scheduler { return bvt.New(2, bvt.WithQuantum(quantum)) },
		"hier":   func() sched.Scheduler { return hier.New(2, quantum) },
	}
	// Relative tolerance for the float tag divisions: r₁/φ + r₂/φ + r₃/φ
	// versus (r₁+r₂+r₃)/φ differ by a few ulps at most.
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			whole, split := factory(), factory()
			ic, ok := split.(sched.InterimCharger)
			if !ok {
				t.Fatalf("%s does not implement sched.InterimCharger", name)
			}
			weights := []float64{1, 2, 4}
			wThreads := make([]*sched.Thread, len(weights))
			sThreads := make([]*sched.Thread, len(weights))
			for i, w := range weights {
				wThreads[i] = interimThread(i+1, w)
				sThreads[i] = interimThread(i+1, w)
				if err := whole.Add(wThreads[i], 0); err != nil {
					t.Fatal(err)
				}
				if err := split.Add(sThreads[i], 0); err != nil {
					t.Fatal(err)
				}
			}
			wPick := whole.Pick(0, 0)
			sPick := split.Pick(0, 0)
			if wPick == nil || sPick == nil || wPick.ID != sPick.ID {
				t.Fatalf("initial picks diverge: %v vs %v", wPick, sPick)
			}
			wPick.CPU, sPick.CPU = 0, 0

			// One 10 ms slice, charged whole vs in 3+4+3 ms installments.
			whole.Charge(wPick, 10*simtime.Millisecond, simtime.Time(10*simtime.Millisecond))
			ic.InterimCharge(sPick, 3*simtime.Millisecond, simtime.Time(3*simtime.Millisecond))
			ic.InterimCharge(sPick, 4*simtime.Millisecond, simtime.Time(7*simtime.Millisecond))
			split.Charge(sPick, 3*simtime.Millisecond, simtime.Time(10*simtime.Millisecond))

			for i := range wThreads {
				a, b := wThreads[i], sThreads[i]
				if a.Service != b.Service {
					t.Errorf("thread %d Service %v vs %v", a.ID, a.Service, b.Service)
				}
				if !close(a.Start, b.Start) || !close(a.Finish, b.Finish) {
					t.Errorf("thread %d tags (%g,%g) vs (%g,%g)",
						a.ID, a.Start, a.Finish, b.Start, b.Finish)
				}
				if !close(a.Pass, b.Pass) {
					t.Errorf("thread %d pass %g vs %g", a.ID, a.Pass, b.Pass)
				}
			}

			// Same decision class: the two instances pick identically from
			// here on under identical further charges.
			wPick.CPU, sPick.CPU = sched.NoCPU, sched.NoCPU
			now := simtime.Time(10 * simtime.Millisecond)
			for i := 0; i < 30; i++ {
				wNext := whole.Pick(0, now)
				sNext := split.Pick(0, now)
				if (wNext == nil) != (sNext == nil) {
					t.Fatalf("step %d: pick %v vs %v", i, wNext, sNext)
				}
				if wNext == nil {
					break
				}
				if wNext.ID != sNext.ID {
					t.Fatalf("step %d: pick order diverges: %d vs %d", i, wNext.ID, sNext.ID)
				}
				wNext.CPU, sNext.CPU = 0, 0
				now = now.Add(5 * simtime.Millisecond)
				whole.Charge(wNext, 5*simtime.Millisecond, now)
				split.Charge(sNext, 5*simtime.Millisecond, now)
				wNext.CPU, sNext.CPU = sched.NoCPU, sched.NoCPU
			}
		})
	}
}
